(* Differential fuzzing entry point (CI: fixed seed range, nonzero exit on
   any failure). Deterministic: seeds fully determine generation, and all
   search budgets are configuration counts, so output is stable across
   machines apart from nothing at all — timings are never printed. *)

let usage = "fuzz [--seeds N] [--seed K] [--first K] [--engines both|product]"

let () =
  let seeds = ref 200 in
  let first = ref 1 in
  let single = ref None in
  let engines = ref Cex_validate.Fuzz.Both in
  let set_engines = function
    | "both" -> engines := Cex_validate.Fuzz.Both
    | "product" -> engines := Cex_validate.Fuzz.Product_only
    | s -> raise (Arg.Bad ("unknown --engines value " ^ s))
  in
  let args =
    [ ("--seeds", Arg.Set_int seeds, "N  number of consecutive seeds (default 200)");
      ("--first", Arg.Set_int first, "K  first seed (default 1)");
      ("--seed", Arg.Int (fun k -> single := Some k), "K  run exactly one seed");
      ( "--engines", Arg.String set_engines,
        "E  both: cross-check product vs srwalk (default); product: product \
         search only" ) ]
  in
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let seed_list =
    match !single with
    | Some k -> [ k ]
    | None -> List.init !seeds (fun i -> !first + i)
  in
  let config =
    { Cex_validate.Fuzz.default_config with
      Cex_validate.Fuzz.engines = !engines }
  in
  let summary = Cex_validate.Fuzz.run ~config seed_list in
  Format.printf "%a@." Cex_validate.Fuzz.pp_summary summary;
  List.iter
    (fun f -> Format.printf "%a@." Cex_validate.Fuzz.pp_failure f)
    (List.rev summary.Cex_validate.Fuzz.failures);
  if summary.Cex_validate.Fuzz.failures <> [] then exit 1
