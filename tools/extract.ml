(* Dump a corpus entry's grammar source to stdout, for feeding the corpus
   into `lrcex batch` as ordinary files:
     dune exec tools/extract.exe stackovf10 > stackovf10.y *)
let () =
  match Sys.argv with
  | [| _; name |] -> print_string (Corpus.find name).Corpus.source
  | _ ->
    prerr_endline "usage: extract CORPUS-ENTRY";
    exit 1
