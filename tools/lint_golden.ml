(* Regenerate the corpus lint golden transcript:

     dune exec tools/lint_golden.exe > test/lint.golden

   The document is byte-deterministic (no timings), so CI diffs it against
   `lrcex lint --corpus --json` verbatim. Regenerate it whenever a lint rule,
   a corpus grammar, or the JSON schema changes, and say so in the commit
   message. *)

let () =
  print_string
    (Cex_service.Json.to_string (Evaluation.Lint_summary.corpus_json ()));
  print_newline ()
