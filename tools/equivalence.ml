(* Regenerate the engine-equivalence golden transcript:

     dune exec tools/equivalence.exe > test/equivalence.golden

   The committed file was captured from the seed (pre-overhaul) engine; only
   regenerate it for a change that is *meant* to alter search outcomes, and
   say so in the commit message. *)

let () =
  let max_configs =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1)
    else Evaluation.Equivalence.default_max_configs
  in
  print_string (Evaluation.Equivalence.summary ~max_configs ())
