(* merge_shards: combine the per-shard NDJSON summary records of sharded
   [lrcex batch --stream --shard i/n] runs into one merged summary.

     merge_shards shard0.ndjson shard1.ndjson ...

   Each input is a full NDJSON stream (or just its summary line); the tool
   reads every line, keeps the [record = "summary"] objects, sums their
   additive ["totals"] fields, and prints one merged object:

     { "record": "merged_summary", "schema_version", "shards", "totals" }

   The totals are the deterministic slice of a batch run (outcome counts,
   never timings), so a merged N-shard partition must equal the unsharded
   run's totals byte-for-byte — CI's shard-merge smoke checks exactly
   that. Exits 1 on malformed input, duplicate shard indices, or an
   incomplete partition (shards missing from a declared I/N split). *)

module Json = Cex_service.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("error: " ^ s); exit 1) fmt

let int_member name json =
  match Json.member name json with
  | Some (Json.Int n) -> n
  | _ -> die "summary record lacks integer field %S" name

let summaries_of_file path =
  let lines = In_channel.with_open_text path In_channel.input_lines in
  List.filter_map
    (fun line ->
      if String.trim line = "" then None
      else
        match Json.of_string_opt line with
        | None -> die "%s: malformed JSON line" path
        | Some json -> (
          match Json.member "record" json with
          | Some (Json.String "summary") -> Some json
          | _ -> None))
    lines

let () =
  let paths =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as paths) -> paths
    | _ -> die "usage: merge_shards SHARD.ndjson..."
  in
  let summaries = List.concat_map summaries_of_file paths in
  if summaries = [] then die "no summary records found";
  let schema_version = int_member "schema_version" (List.hd summaries) in
  List.iter
    (fun s ->
      if int_member "schema_version" s <> schema_version then
        die "mixed schema versions across shards")
    summaries;
  (* Shard bookkeeping: all-null shards (unsharded runs) merge freely;
     declared shards must form a complete, duplicate-free 0..n-1 set. *)
  let declared =
    List.filter_map
      (fun s ->
        match Json.member "shard" s with
        | Some Json.Null | None -> None
        | Some shard ->
          Some (int_member "index" shard, int_member "count" shard))
      summaries
  in
  (match declared with
  | [] -> ()
  | (_, n) :: _ ->
    if List.exists (fun (_, n') -> n' <> n) declared then
      die "shards disagree on the shard count";
    let seen = Array.make n false in
    List.iter
      (fun (i, _) ->
        if i < 0 || i >= n then die "shard index %d out of range 0..%d" i (n - 1)
        else if seen.(i) then die "duplicate shard %d/%d" i n
        else seen.(i) <- true)
      declared;
    Array.iteri
      (fun i present -> if not present then die "missing shard %d/%d" i n)
      seen);
  let totals_fields =
    match Json.member "totals" (List.hd summaries) with
    | Some totals -> Json.keys totals
    | None -> die "summary record lacks totals"
  in
  let merged_totals =
    List.map
      (fun field ->
        ( field,
          Json.Int
            (List.fold_left
               (fun acc s ->
                 match Json.member "totals" s with
                 | Some totals -> acc + int_member field totals
                 | None -> die "summary record lacks totals")
               0 summaries) ))
      totals_fields
  in
  print_endline
    (Json.to_string ~minify:true
       (Json.Obj
          [ ("record", Json.String "merged_summary");
            ("schema_version", Json.Int schema_version);
            ("shards", Json.Int (List.length summaries));
            ("totals", Json.Obj merged_totals) ]))
